let complete n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.add_edge_unit g u v)
    done
  done;
  g

let path n =
  let g = Graph.create n in
  for u = 0 to n - 2 do
    ignore (Graph.add_edge_unit g u (u + 1))
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  let g = path n in
  ignore (Graph.add_edge_unit g (n - 1) 0);
  g

let grid ~rows ~cols =
  let g = Graph.create (rows * cols) in
  let idx r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge_unit g (idx r c) (idx r (c + 1)));
      if r + 1 < rows then ignore (Graph.add_edge_unit g (idx r c) (idx (r + 1) c))
    done
  done;
  g

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: need rows, cols >= 3";
  let g = grid ~rows ~cols in
  let idx r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    ignore (Graph.add_edge_unit g (idx r (cols - 1)) (idx r 0))
  done;
  for c = 0 to cols - 1 do
    ignore (Graph.add_edge_unit g (idx (rows - 1) c) (idx 0 c))
  done;
  g

let hypercube ~dim =
  if dim < 0 || dim > 20 then invalid_arg "Generators.hypercube: dim out of range";
  let n = 1 lsl dim in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if v > u then ignore (Graph.add_edge_unit g u v)
    done
  done;
  g

let gnp rng ~n ~p =
  let g = Graph.create n in
  if p > 0. then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.bernoulli rng ~p then ignore (Graph.add_edge_unit g u v)
      done
    done;
  g

let gnm rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Generators.gnm: m out of range";
  let g = Graph.create n in
  (* Rejection sampling is fine up to half density; fall back to sampling
     edge slots without replacement for denser requests. *)
  if 2 * m <= max_m then begin
    while Graph.m g < m do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Graph.mem_edge g u v) then ignore (Graph.add_edge_unit g u v)
    done;
    g
  end
  else begin
    let slots = Rng.sample_without_replacement rng ~k:m ~n:max_m in
    (* Slot s encodes the s-th pair (u,v) in lexicographic order. *)
    let decode s =
      let rec find u acc =
        let row = n - 1 - u in
        if s < acc + row then (u, u + 1 + (s - acc)) else find (u + 1) (acc + row)
      in
      find 0 0
    in
    List.iter
      (fun s ->
        let u, v = decode s in
        ignore (Graph.add_edge_unit g u v))
      slots;
    g
  end

let random_geometric rng ~n ~radius ~euclidean_weights =
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let xu, yu = pts.(u) and xv, yv = pts.(v) in
      let d = sqrt (((xu -. xv) ** 2.) +. ((yu -. yv) ** 2.)) in
      if d <= radius then
        let w = if euclidean_weights then max d 1e-9 else 1.0 in
        ignore (Graph.add_edge g u v ~w)
    done
  done;
  g

let barabasi_albert rng ~n ~attach =
  if attach < 1 || n < attach + 1 then
    invalid_arg "Generators.barabasi_albert: need n >= attach+1 >= 2";
  let g = complete (attach + 1) in
  let g =
    let bigger = Graph.create n in
    Graph.iter_edges g (fun e -> ignore (Graph.add_edge_unit bigger e.Graph.u e.Graph.v));
    bigger
  in
  (* endpoint multiset: each edge contributes both endpoints, so sampling a
     uniform entry is degree-proportional sampling. *)
  let endpoints = ref [] in
  Graph.iter_edges g (fun e ->
      endpoints := e.Graph.u :: e.Graph.v :: !endpoints);
  let stubs = ref (Array.of_list !endpoints) in
  let stub_count = ref (Array.length !stubs) in
  let push x =
    if !stub_count = Array.length !stubs then begin
      let bigger = Array.make (max 8 (2 * !stub_count)) 0 in
      Array.blit !stubs 0 bigger 0 !stub_count;
      stubs := bigger
    end;
    !stubs.(!stub_count) <- x;
    incr stub_count
  in
  for v = attach + 1 to n - 1 do
    let chosen = ref [] in
    while List.length !chosen < attach do
      let t = !stubs.(Rng.int rng !stub_count) in
      if t <> v && not (List.mem t !chosen) then chosen := t :: !chosen
    done;
    List.iter
      (fun t ->
        ignore (Graph.add_edge_unit g v t);
        push v;
        push t)
      !chosen
  done;
  g

let random_regular rng ~n ~d =
  if d >= n || n * d mod 2 <> 0 then
    invalid_arg "Generators.random_regular: need d < n and n*d even";
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    Rng.shuffle rng stubs;
    let g = Graph.create n in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i + 1 < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || Graph.mem_edge g u v then ok := false
      else ignore (Graph.add_edge_unit g u v);
      i := !i + 2
    done;
    if !ok then Some g else None
  in
  let rec retry tries =
    if tries > 10_000 then
      failwith "Generators.random_regular: too many restarts (d too close to n?)"
    else
      match attempt () with Some g -> g | None -> retry (tries + 1)
  in
  retry 0

let cycle_with_chords rng ~n ~chords =
  let g = cycle n in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 100 * (chords + 1) in
  while !added < chords && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      ignore (Graph.add_edge_unit g u v);
      incr added
    end
  done;
  g

let planted_partition rng ~blocks ~block_size ~p_in ~p_out =
  let n = blocks * block_size in
  let g = Graph.create n in
  let block v = v / block_size in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if block u = block v then p_in else p_out in
      if Rng.bernoulli rng ~p then ignore (Graph.add_edge_unit g u v)
    done
  done;
  g

let with_uniform_weights rng g ~lo ~hi =
  let out = Graph.create (Graph.n g) in
  Graph.iter_edges g (fun e ->
      let w = Rng.uniform_weight rng ~lo ~hi in
      ignore (Graph.add_edge out e.Graph.u e.Graph.v ~w));
  out

let ensure_connected rng g =
  let out = Graph.copy g in
  let label, count = Components.labels out in
  if count <= 1 then out
  else begin
    (* Pick one representative per component, chain them with random
       partner vertices to avoid a star on representatives. *)
    let reps = Array.make count (-1) in
    Array.iteri (fun v c -> if c >= 0 && reps.(c) < 0 then reps.(c) <- v) label;
    let uf = Union_find.create (Graph.n out) in
    Graph.iter_edges out (fun e -> ignore (Union_find.union uf e.Graph.u e.Graph.v));
    for c = 1 to count - 1 do
      let u = reps.(c) in
      (* random vertex from the already-merged part *)
      let scan_partner () =
        let v = ref (-1) in
        for x = 0 to Graph.n out - 1 do
          if !v < 0 && not (Union_find.same uf u x) then v := x
        done;
        !v
      in
      let rec pick_partner tries =
        if tries > 1000 then scan_partner ()
        else
          let v = Rng.int rng (Graph.n out) in
          if (not (Union_find.same uf u v)) && not (Graph.mem_edge out u v) then v
          else pick_partner (tries + 1)
      in
      let v = pick_partner 0 in
      if not (Graph.mem_edge out u v) then begin
        ignore (Graph.add_edge_unit out u v);
        ignore (Union_find.union uf u v)
      end
    done;
    out
  end

let connected_gnp rng ~n ~p = ensure_connected rng (gnp rng ~n ~p)
