(** Materialized subgraphs with vertex/edge provenance maps.

    Algorithms such as the Dinitz-Krauthgamer reduction and the LOCAL
    cluster-greedy run a spanner construction on an induced subgraph and
    then translate the chosen edges back to the parent graph; the maps
    returned here make that translation explicit. *)

type t = {
  graph : Graph.t;  (** the subgraph, with fresh vertex/edge numbering *)
  to_parent_vertex : int array;  (** subgraph vertex -> parent vertex *)
  of_parent_vertex : int array;  (** parent vertex -> subgraph vertex or -1 *)
  to_parent_edge : int array;  (** subgraph edge id -> parent edge id *)
}

(** [induced g vertices] is the subgraph of [g] induced by the given vertex
    set (duplicates ignored). *)
val induced : Graph.t -> int list -> t

(** [induced_mask g keep] is the subgraph induced by [{ v | keep.(v) }]. *)
val induced_mask : Graph.t -> bool array -> t

(** [of_edge_subset g keep] is the spanning subgraph of [g] keeping edge
    [id] iff [keep.(id)].  Vertex numbering is preserved
    ([to_parent_vertex] is the identity). *)
val of_edge_subset : Graph.t -> bool array -> t
