type edge = { u : int; v : int; w : float; id : int }

(* The edge store is struct-of-arrays: three parallel arrays indexed by
   edge id (first [count] slots valid), not an [edge array].  At 3 words
   per edge instead of 6 (slot + record header + fields) this halves the
   store's resident size, and bulk loaders ([of_adjacency]) fill plain
   int/float arrays without allocating a record per edge.  [edge]
   records are materialized on demand; they are short-lived minor-heap
   values, which OCaml's GC reclaims for free. *)
type t = {
  size : int;
  mutable count : int;
  mutable e_u : int array;  (* smaller endpoint *)
  mutable e_v : int array;  (* larger endpoint *)
  mutable e_w : float array;  (* weight *)
  adj : Csr.t;  (* flat adjacency; see Csr for the layout *)
}

let create ?backend n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  let cap = max 8 n in
  {
    size = n;
    count = 0;
    e_u = Array.make cap (-1);
    e_v = Array.make cap (-1);
    e_w = Array.make cap 0.;
    adj = Csr.create ?backend n;
  }

let n g = g.size
let m g = g.count
let backend g = Csr.backend g.adj
let resident_bytes g = Csr.resident_bytes g.adj

let check_vertex g x name =
  if x < 0 || x >= g.size then
    invalid_arg (Printf.sprintf "Graph.%s: vertex %d out of range [0,%d)" name x g.size)

let adjacency g = g.adj

let neighbors g u =
  check_vertex g u "neighbors";
  let acc = ref [] in
  Csr.iter g.adj u (fun v id -> acc := (v, id) :: !acc);
  List.rev !acc

let degree g u =
  check_vertex g u "degree";
  Csr.degree g.adj u

let find_edge g u v =
  check_vertex g u "find_edge";
  check_vertex g v "find_edge";
  Csr.find g.adj u v

let mem_edge g u v = Option.is_some (find_edge g u v)

let grow g =
  let cap = Array.length g.e_u in
  if g.count = cap then begin
    let widen a fill =
      let bigger = Array.make (2 * cap) fill in
      Array.blit a 0 bigger 0 cap;
      bigger
    in
    g.e_u <- widen g.e_u (-1);
    g.e_v <- widen g.e_v (-1);
    let bigger = Array.make (2 * cap) 0. in
    Array.blit g.e_w 0 bigger 0 cap;
    g.e_w <- bigger
  end

let add_edge g u v ~w =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w <= 0. then invalid_arg "Graph.add_edge: non-positive weight";
  if mem_edge g u v then
    invalid_arg (Printf.sprintf "Graph.add_edge: duplicate edge {%d,%d}" u v);
  let lo = min u v and hi = max u v in
  let id = g.count in
  grow g;
  g.e_u.(id) <- lo;
  g.e_v.(id) <- hi;
  g.e_w.(id) <- w;
  g.count <- id + 1;
  Csr.add g.adj u v id;
  Csr.add g.adj v u id;
  id

let add_edge_unit g u v = add_edge g u v ~w:1.0

let of_edges ?backend n pairs =
  let g = create ?backend n in
  List.iter (fun (u, v) -> ignore (add_edge_unit g u v)) pairs;
  g

let of_weighted_edges ?backend n triples =
  let g = create ?backend n in
  List.iter (fun (u, v, w) -> ignore (add_edge g u v ~w)) triples;
  g

(* Bulk constructor for loaders: adopt a pre-built adjacency and
   reconstruct the edge store from its half-edges in one linear pass,
   bypassing the per-edge duplicate probes of [add_edge] (which are
   O(deg) each and dominate at 10^7-edge scale).  Every consistency
   property [add_edge] enforces is re-checked here, just in aggregate:
   each id in [0, m) must appear as exactly two half-edges forming one
   undirected non-loop edge, and weights must be positive. *)
let of_adjacency ?weights adj =
  let fail msg = invalid_arg ("Graph.of_adjacency: " ^ msg) in
  let n = Csr.vertices adj in
  let half = Csr.half_edges adj in
  if half mod 2 <> 0 then fail "odd half-edge count";
  let m = half / 2 in
  (match weights with
  | Some w when Array.length w <> m -> fail "weight array length <> m"
  | _ -> ());
  let cap = max 8 m in
  (* Vertex rows are scanned in increasing order, so the [min]-endpoint
     half-edge of an id is always met before its reverse: record on
     [x < y], match on [x > y].  [mark] stamps neighbors per row to
     reject parallel edges under distinct ids.  Per-id state lives in
     ONE word of [uv] — both endpoints packed as [(u lsl 31) lor v]
     (the guard below keeps vertex ids inside 31 bits), with
     [-1] = unseen and [lnot packed] = paired — because the [uv.(id)]
     accesses are random while everything else streams: one cache miss
     per half-edge instead of three is what bulk loading 10^7 edges
     actually pays for. *)
  if n > 0x7fffffff then fail "vertex count exceeds the packing range";
  let uv = Array.make m (-1) in
  let mark = Array.make n (-1) in
  let scan = Csr.scanner adj in
  for x = 0 to n - 1 do
    scan x (fun y id ->
        if id < 0 || id >= m then fail "edge id out of range";
        if x = y then fail "self-loop";
        if mark.(y) = x then fail "parallel edge";
        mark.(y) <- x;
        if x < y then begin
          if uv.(id) <> -1 then fail "duplicate edge id";
          uv.(id) <- (x lsl 31) lor y
        end
        else begin
          if uv.(id) <> (y lsl 31) lor x then
            fail "half-edges of an id do not pair up";
          uv.(id) <- lnot uv.(id)
        end)
  done;
  let e_u = Array.make cap (-1) and e_v = Array.make cap (-1) in
  for id = 0 to m - 1 do
    (* [-1] = never seen, [>= 0] = recorded but never matched. *)
    let v = uv.(id) in
    if v >= -1 then fail "edge id missing a half-edge";
    let packed = lnot v in
    e_u.(id) <- packed lsr 31;
    e_v.(id) <- packed land 0x7fffffff
  done;
  let e_w =
    match weights with
    | None ->
        let w = Array.make cap 0. in
        Array.fill w 0 m 1.0;
        w
    | Some src ->
        let w = Array.make cap 0. in
        for id = 0 to m - 1 do
          if not (src.(id) > 0.) then fail "non-positive weight";
          w.(id) <- src.(id)
        done;
        w
  in
  { size = n; count = m; e_u; e_v; e_w; adj }

let with_backend backend g =
  {
    g with
    e_u = Array.copy g.e_u;
    e_v = Array.copy g.e_v;
    e_w = Array.copy g.e_w;
    adj = Csr.convert backend g.adj;
  }

let unsafe_edge g id =
  {
    u = Array.unsafe_get g.e_u id;
    v = Array.unsafe_get g.e_v id;
    w = Array.unsafe_get g.e_w id;
    id;
  }

let edge g id =
  if id < 0 || id >= g.count then
    invalid_arg (Printf.sprintf "Graph.edge: id %d out of range [0,%d)" id g.count);
  unsafe_edge g id

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let weight g id = (edge g id).w

let other_endpoint g id x =
  let e = edge g id in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg (Printf.sprintf "Graph.other_endpoint: %d not on edge %d" x id)

let iter_edges g fn =
  for i = 0 to g.count - 1 do
    fn (unsafe_edge g i)
  done

let fold_edges g init fn =
  let acc = ref init in
  for i = 0 to g.count - 1 do
    acc := fn !acc (unsafe_edge g i)
  done;
  !acc

let edge_array g = Array.init g.count (fun i -> unsafe_edge g i)

let iter_neighbors g u fn =
  check_vertex g u "iter_neighbors";
  Csr.iter g.adj u fn

let copy g =
  {
    size = g.size;
    count = g.count;
    e_u = Array.copy g.e_u;
    e_v = Array.copy g.e_v;
    e_w = Array.copy g.e_w;
    adj = Csr.copy g.adj;
  }

let total_weight g =
  let acc = ref 0. in
  for i = 0 to g.count - 1 do
    acc := !acc +. g.e_w.(i)
  done;
  !acc

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.size - 1 do
    let d = Csr.degree g.adj u in
    if d > !best then best := d
  done;
  !best

let is_unit_weighted g =
  let ok = ref true in
  for i = 0 to g.count - 1 do
    if g.e_w.(i) <> 1.0 then ok := false
  done;
  !ok

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.size g.count

let pp_edge ppf e = Format.fprintf ppf "{%d,%d} w=%g #%d" e.u e.v e.w e.id
