type edge = { u : int; v : int; w : float; id : int }

type t = {
  size : int;
  mutable count : int;
  mutable store : edge array;  (* first [count] slots are valid *)
  adj : Csr.t;  (* flat adjacency; see Csr for the layout *)
}

let dummy_edge = { u = -1; v = -1; w = 0.; id = -1 }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { size = n; count = 0; store = Array.make (max 8 n) dummy_edge; adj = Csr.create n }

let n g = g.size
let m g = g.count

let check_vertex g x name =
  if x < 0 || x >= g.size then
    invalid_arg (Printf.sprintf "Graph.%s: vertex %d out of range [0,%d)" name x g.size)

let adjacency g = g.adj

let neighbors g u =
  check_vertex g u "neighbors";
  let acc = ref [] in
  Csr.iter g.adj u (fun v id -> acc := (v, id) :: !acc);
  List.rev !acc

let degree g u =
  check_vertex g u "degree";
  Csr.degree g.adj u

let find_edge g u v =
  check_vertex g u "find_edge";
  check_vertex g v "find_edge";
  Csr.find g.adj u v

let mem_edge g u v = Option.is_some (find_edge g u v)

let grow g =
  let cap = Array.length g.store in
  if g.count = cap then begin
    let bigger = Array.make (2 * cap) dummy_edge in
    Array.blit g.store 0 bigger 0 cap;
    g.store <- bigger
  end

let add_edge g u v ~w =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w <= 0. then invalid_arg "Graph.add_edge: non-positive weight";
  if mem_edge g u v then
    invalid_arg (Printf.sprintf "Graph.add_edge: duplicate edge {%d,%d}" u v);
  let lo = min u v and hi = max u v in
  let id = g.count in
  grow g;
  g.store.(id) <- { u = lo; v = hi; w; id };
  g.count <- id + 1;
  Csr.add g.adj u v id;
  Csr.add g.adj v u id;
  id

let add_edge_unit g u v = add_edge g u v ~w:1.0

let of_edges n pairs =
  let g = create n in
  List.iter (fun (u, v) -> ignore (add_edge_unit g u v)) pairs;
  g

let of_weighted_edges n triples =
  let g = create n in
  List.iter (fun (u, v, w) -> ignore (add_edge g u v ~w)) triples;
  g

let edge g id =
  if id < 0 || id >= g.count then
    invalid_arg (Printf.sprintf "Graph.edge: id %d out of range [0,%d)" id g.count);
  g.store.(id)

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let weight g id = (edge g id).w

let other_endpoint g id x =
  let e = edge g id in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg (Printf.sprintf "Graph.other_endpoint: %d not on edge %d" x id)

let iter_edges g fn =
  for i = 0 to g.count - 1 do
    fn g.store.(i)
  done

let fold_edges g init fn =
  let acc = ref init in
  for i = 0 to g.count - 1 do
    acc := fn !acc g.store.(i)
  done;
  !acc

let edge_array g = Array.sub g.store 0 g.count

let iter_neighbors g u fn =
  check_vertex g u "iter_neighbors";
  Csr.iter g.adj u fn

let copy g =
  {
    size = g.size;
    count = g.count;
    store = Array.copy g.store;
    adj = Csr.copy g.adj;
  }

let total_weight g = fold_edges g 0. (fun acc e -> acc +. e.w)

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.size - 1 do
    let d = Csr.degree g.adj u in
    if d > !best then best := d
  done;
  !best

let is_unit_weighted g =
  let ok = ref true in
  iter_edges g (fun e -> if e.w <> 1.0 then ok := false);
  !ok

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.size g.count

let pp_edge ppf e = Format.fprintf ppf "{%d,%d} w=%g #%d" e.u e.v e.w e.id
