(** Deterministic pseudo-random number generation.

    Every randomized component of the library (graph generators, the
    Dinitz-Krauthgamer reduction, network decompositions, fault samplers)
    threads an explicit [Rng.t] so that experiments are reproducible from a
    single integer seed.  The implementation wraps the standard library's
    splittable [Random.State] and adds the samplers the spanner algorithms
    need. *)

type t

(** [create ~seed] returns a generator determined entirely by [seed]. *)
val create : seed:int -> t

(** [split rng] returns a fresh generator whose stream is a deterministic
    function of [rng]'s current state, advancing [rng].  Use it to hand
    independent streams to sub-components without coupling their
    consumption patterns. *)
val split : t -> t

(** [copy rng] duplicates the current state (both copies then produce the
    same stream). *)
val copy : t -> t

(** [int rng bound] draws uniformly from [0, bound-1].  [bound] must be
    positive. *)
val int : t -> int -> int

(** [float rng bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bool rng] draws a fair coin. *)
val bool : t -> bool

(** [bernoulli rng ~p] returns [true] with probability [p] (clamped to
    [0,1]). *)
val bernoulli : t -> p:float -> bool

(** [exponential rng ~rate] draws from the exponential distribution with the
    given rate (mean [1/rate]).  Used by random-shift decompositions. *)
val exponential : t -> rate:float -> float

(** [uniform_weight rng ~lo ~hi] draws a weight uniformly from [[lo, hi]]. *)
val uniform_weight : t -> lo:float -> hi:float -> float

(** [shuffle rng a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation rng n] returns a uniformly random permutation of
    [0..n-1]. *)
val permutation : t -> int -> int array

(** [sample_without_replacement rng ~k ~n] returns [k] distinct values drawn
    uniformly from [0..n-1], in increasing order.  Requires [0 <= k <= n]. *)
val sample_without_replacement : t -> k:int -> n:int -> int list

(** [pick rng a] returns a uniformly random element of the non-empty array
    [a]. *)
val pick : t -> 'a array -> 'a
