let vertex_blocked mask x =
  match mask with
  | None -> false
  | Some a -> x < Array.length a && a.(x)

let edge_blocked mask id =
  match mask with
  | None -> false
  | Some a -> id < Array.length a && a.(id)

let min_hop_path ?blocked_vertices ?blocked_edges g ~src ~dst ~budget ~max_hops =
  if
    vertex_blocked blocked_vertices src
    || vertex_blocked blocked_vertices dst
    || budget < 0.
  then None
  else if src = dst then Some { Path.vertices = [ src ]; edges = [] }
  else begin
    let n = Graph.n g in
    let max_hops = min max_hops (n - 1) in
    (* dist.(v): lightest weight reaching [v] within the current hop count;
       rebuilt layer by layer.  parent.(h) records the tree of layer h so a
       witness can be extracted once [dst] first becomes reachable. *)
    let scan = Csr.scanner (Graph.adjacency g) in
    let dist = Array.make n infinity in
    let next = Array.make n infinity in
    let parent_edge = Array.init (max_hops + 1) (fun _ -> [||]) in
    let parent_vertex = Array.init (max_hops + 1) (fun _ -> [||]) in
    dist.(src) <- 0.;
    let found_at = ref (-1) in
    let h = ref 0 in
    while !found_at < 0 && !h < max_hops do
      incr h;
      let pe = Array.make n (-1) and pv = Array.make n (-1) in
      parent_edge.(!h) <- pe;
      parent_vertex.(!h) <- pv;
      Array.blit dist 0 next 0 n;
      let improved = ref false in
      for x = 0 to n - 1 do
        if dist.(x) < infinity then begin
          let relax y id =
            if
              (not (edge_blocked blocked_edges id))
              && not (vertex_blocked blocked_vertices y)
            then begin
              let nd = dist.(x) +. Graph.weight g id in
              if nd <= budget && nd < next.(y) then begin
                next.(y) <- nd;
                pe.(y) <- id;
                pv.(y) <- x;
                improved := true
              end
            end
          in
          scan x relax
        end
      done;
      Array.blit next 0 dist 0 n;
      if dist.(dst) < infinity then found_at := !h
      else if not !improved then h := max_hops (* fixed point: stop *)
    done;
    if !found_at < 0 then None
    else begin
      (* Walk back through the layers.  A vertex reached at layer h may have
         been reached earlier; follow the latest layer [<= h] that recorded a
         parent, which reconstructs a lightest walk of at most [found_at]
         hops. *)
      let rec climb x h vertices edges =
        if x = src then Some { Path.vertices = src :: vertices; edges }
        else if h <= 0 then None
        else if parent_edge.(h).(x) >= 0 then
          climb
            parent_vertex.(h).(x)
            (h - 1)
            (x :: vertices)
            (parent_edge.(h).(x) :: edges)
        else climb x (h - 1) vertices edges
      in
      climb dst !found_at [] []
    end
  end
