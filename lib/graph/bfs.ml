module Workspace = struct
  type t = {
    mutable seen : int array;  (* stamp marking, never cleared *)
    mutable parent_edge : int array;
    mutable parent_vertex : int array;
    mutable depth : int array;
    mutable queue : int array;
    mutable stamp : int;
  }

  let create () =
    {
      seen = [||];
      parent_edge = [||];
      parent_vertex = [||];
      depth = [||];
      queue = [||];
      stamp = 0;
    }

  let ensure ws n =
    if Array.length ws.seen < n then begin
      let cap = max n (2 * Array.length ws.seen) in
      ws.seen <- Array.make cap 0;
      ws.parent_edge <- Array.make cap (-1);
      ws.parent_vertex <- Array.make cap (-1);
      ws.depth <- Array.make cap 0;
      ws.queue <- Array.make cap 0;
      ws.stamp <- 0
    end
end

(* Work counters flushed once per traversal: the loops below accumulate
   into locals, so the per-edge cost of instrumentation is one register
   increment. *)
let m_searches = Obs.counter "bfs.searches"
let m_nodes = Obs.counter "bfs.nodes_scanned"
let m_edges = Obs.counter "bfs.edges_scanned"

let vertex_blocked mask x =
  match mask with
  | None -> false
  | Some a -> x < Array.length a && a.(x)

let edge_blocked mask id =
  match mask with
  | None -> false
  | Some a -> id < Array.length a && a.(id)

(* Core BFS loop shared by path extraction: fills [ws] with the BFS tree up
   to [max_hops] levels, stopping as soon as [dst] is reached.  Returns
   [true] iff [dst] was reached.

   The frontier scan goes through one [Csr.scanner] built per traversal:
   the storage-backend dispatch and array captures happen once, and the
   per-vertex scan walks the append-buffer chain first, then the packed
   slice — the same newest-first order the list adjacency had, identical
   for both backends.  This is the hot path of every LBC call and hence
   of the whole greedy pipeline. *)
let search ws ~blocked_vertices ~blocked_edges g ~src ~dst ~max_hops =
  let open Workspace in
  ensure ws (Graph.n g);
  ws.stamp <- ws.stamp + 1;
  let stamp = ws.stamp in
  Obs.Counter.incr m_searches;
  if vertex_blocked blocked_vertices src || vertex_blocked blocked_vertices dst
  then false
  else if src = dst then true
  else begin
    let scan = Csr.scanner (Graph.adjacency g) in
    ws.seen.(src) <- stamp;
    ws.depth.(src) <- 0;
    ws.parent_edge.(src) <- -1;
    ws.queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    let scanned = ref 0 in
    while (not !found) && !head < !tail do
      let x = ws.queue.(!head) in
      incr head;
      let d = ws.depth.(x) in
      if d < max_hops then begin
        let visit y id =
          incr scanned;
          if
            (not !found)
            && ws.seen.(y) <> stamp
            && (not (edge_blocked blocked_edges id))
            && not (vertex_blocked blocked_vertices y)
          then begin
            ws.seen.(y) <- stamp;
            ws.depth.(y) <- d + 1;
            ws.parent_edge.(y) <- id;
            ws.parent_vertex.(y) <- x;
            if y = dst then found := true
            else begin
              ws.queue.(!tail) <- y;
              incr tail
            end
          end
        in
        scan x visit
      end
    done;
    Obs.Counter.add m_nodes !head;
    Obs.Counter.add m_edges !scanned;
    !found
  end

let extract_path ws ~src ~dst =
  let open Workspace in
  if src = dst then { Path.vertices = [ src ]; edges = [] }
  else begin
    let rec climb x vertices edges =
      if x = src then { Path.vertices = src :: vertices; edges }
      else climb ws.parent_vertex.(x) (x :: vertices) (ws.parent_edge.(x) :: edges)
    in
    climb dst [] []
  end

let default_ws = Workspace.create ()

let hop_bounded_path ?ws ?blocked_vertices ?blocked_edges g ~src ~dst ~max_hops =
  let ws = Option.value ws ~default:default_ws in
  if search ws ~blocked_vertices ~blocked_edges g ~src ~dst ~max_hops then
    Some (extract_path ws ~src ~dst)
  else None

let distances ?blocked_vertices ?blocked_edges g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  Obs.Counter.incr m_searches;
  if vertex_blocked blocked_vertices src then dist
  else begin
    let scan = Csr.scanner (Graph.adjacency g) in
    let queue = Array.make n 0 in
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let scanned = ref 0 in
    while !head < !tail do
      let x = queue.(!head) in
      incr head;
      let visit y id =
        incr scanned;
        if
          dist.(y) < 0
          && (not (edge_blocked blocked_edges id))
          && not (vertex_blocked blocked_vertices y)
        then begin
          dist.(y) <- dist.(x) + 1;
          queue.(!tail) <- y;
          incr tail
        end
      in
      scan x visit
    done;
    Obs.Counter.add m_nodes !head;
    Obs.Counter.add m_edges !scanned;
    dist
  end

let hop_distance g u v =
  let d = (distances g u).(v) in
  if d < 0 then None else Some d

let eccentricity g u =
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 (distances g u)
