(** Hop-constrained lightest paths (layered Bellman-Ford).

    The exponential-time greedy baseline (Algorithm 1 of the paper) must
    decide, exactly, whether some fault set [F] with [|F| <= f] destroys
    every path of weight at most [(2k-1) * w(u,v)].  Our branch-and-bound
    search for such an [F] branches over the members of a {e minimum-hop}
    witness path within the weight budget; this module finds that witness.

    [min_hop_path g ~src ~dst ~budget ~max_hops] computes, among all
    [src]-[dst] paths of total weight at most [budget] and at most
    [max_hops] edges, one with the fewest hops.  The DP table is
    [dist.(h).(v)] = lightest weight of a walk from [src] to [v] using
    exactly at most [h] hops; lightest walks within a budget are simple, so
    the extracted witness is a path. *)

val min_hop_path :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  src:int ->
  dst:int ->
  budget:float ->
  max_hops:int ->
  Path.t option
