type backend = Int_array | Int32_bigarray

let backend_name = function
  | Int_array -> "int"
  | Int32_bigarray -> "int32"

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let i32_create len : i32 =
  Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len

let i32_zeros len =
  let a = i32_create len in
  Bigarray.Array1.fill a 0l;
  a

(* The packed CSR region, in one of the two storage backends.  The
   append buffer stays in native int arrays regardless of backend: it is
   small (at most a quarter of the packed region) and mutation-heavy, so
   boxing its accesses behind the backend seam would tax [add] for no
   resident-memory win. *)
type packed =
  | P_int of { off : int array; nbr : int array; eid : int array }
  | P_i32 of { off : i32; nbr : i32; eid : i32 }

type t = {
  n : int;
  limit : int;  (* max half-edges the backend can index *)
  mutable packed : packed;
  mutable buf_head : int array;
  mutable buf_nbr : int array;
  mutable buf_eid : int array;
  mutable buf_next : int array;
  mutable buf_len : int;
  mutable deg : int array;
  mutable half : int;
}

let backend t =
  match t.packed with P_int _ -> Int_array | P_i32 _ -> Int32_bigarray

let compaction_floor = 64

let max_half = function
  | Int_array -> Sys.max_array_length
  | Int32_bigarray -> Int32.to_int Int32.max_int

let vertices t = t.n
let half_edges t = t.half
let degree t u = t.deg.(u)
let buffered t = t.buf_len

(* Last-value gauges, one per backend, refreshed at the storage-shape
   events (create / compact / bulk load / convert): they report the
   resident bytes of the most recently (re)built adjacency so bench
   tables can show the int32 memory win.  [gauge.*] is excluded from the
   regression gate. *)
let g_bytes_int = Obs.gauge "gauge.graph.bytes.int"
let g_bytes_i32 = Obs.gauge "gauge.graph.bytes.int32"

let word_bytes = Sys.word_size / 8

let resident_bytes t =
  let dim = Bigarray.Array1.dim in
  let packed =
    match t.packed with
    | P_int { off; nbr; eid } ->
        word_bytes * (Array.length off + Array.length nbr + Array.length eid)
    | P_i32 { off; nbr; eid } -> 4 * (dim off + dim nbr + dim eid)
  in
  packed
  + word_bytes
    * (Array.length t.buf_head + Array.length t.buf_nbr
     + Array.length t.buf_eid + Array.length t.buf_next
     + Array.length t.deg)

let note_bytes t =
  let g =
    match backend t with Int_array -> g_bytes_int | Int32_bigarray -> g_bytes_i32
  in
  Obs.Gauge.set g (resident_bytes t)

(* Process default, overridable once at startup (bench --backend int32
   reruns the whole suite on compact storage with identical counters). *)
let default = Atomic.make Int_array
let set_default_backend b = Atomic.set default b
let default_backend () = Atomic.get default

let create ?backend n =
  let backend =
    match backend with Some b -> b | None -> Atomic.get default
  in
  if backend = Int32_bigarray && n >= max_half Int32_bigarray then
    invalid_arg "Csr.create: vertex count exceeds the int32 backend's index range";
  let packed =
    match backend with
    | Int_array -> P_int { off = Array.make (n + 1) 0; nbr = [||]; eid = [||] }
    | Int32_bigarray ->
        P_i32 { off = i32_zeros (n + 1); nbr = i32_create 0; eid = i32_create 0 }
  in
  let t =
    {
      n;
      limit = max_half backend;
      packed;
      buf_head = Array.make n (-1);
      buf_nbr = [||];
      buf_eid = [||];
      buf_next = [||];
      buf_len = 0;
      deg = Array.make n 0;
      half = 0;
    }
  in
  note_bytes t;
  t

let compact t =
  if t.buf_len > 0 then begin
    let off = Array.make (t.n + 1) 0 in
    let acc = ref 0 in
    for u = 0 to t.n - 1 do
      off.(u) <- !acc;
      acc := !acc + t.deg.(u)
    done;
    off.(t.n) <- !acc;
    (* Per vertex: buffer chain first (it is newest-first), then the old
       packed slice (already newest-first) — decreasing edge ids
       throughout, so the ordering contract survives compaction in both
       backends. *)
    (match t.packed with
    | P_int { off = ooff; nbr = onbr; eid = oeid } ->
        let nbr = Array.make t.half 0 and eid = Array.make t.half 0 in
        for u = 0 to t.n - 1 do
          let cur = ref off.(u) in
          let j = ref t.buf_head.(u) in
          while !j >= 0 do
            nbr.(!cur) <- t.buf_nbr.(!j);
            eid.(!cur) <- t.buf_eid.(!j);
            incr cur;
            j := t.buf_next.(!j)
          done;
          t.buf_head.(u) <- -1;
          for i = ooff.(u) to ooff.(u + 1) - 1 do
            nbr.(!cur) <- onbr.(i);
            eid.(!cur) <- oeid.(i);
            incr cur
          done
        done;
        t.packed <- P_int { off; nbr; eid }
    | P_i32 { off = ooff; nbr = onbr; eid = oeid } ->
        let noff = i32_create (t.n + 1) in
        for u = 0 to t.n do
          Bigarray.Array1.set noff u (Int32.of_int off.(u))
        done;
        let nbr = i32_create t.half and eid = i32_create t.half in
        for u = 0 to t.n - 1 do
          let cur = ref off.(u) in
          let j = ref t.buf_head.(u) in
          while !j >= 0 do
            Bigarray.Array1.set nbr !cur (Int32.of_int t.buf_nbr.(!j));
            Bigarray.Array1.set eid !cur (Int32.of_int t.buf_eid.(!j));
            incr cur;
            j := t.buf_next.(!j)
          done;
          t.buf_head.(u) <- -1;
          let lo = Int32.to_int (Bigarray.Array1.get ooff u) in
          let hi = Int32.to_int (Bigarray.Array1.get ooff (u + 1)) in
          for i = lo to hi - 1 do
            Bigarray.Array1.set nbr !cur (Bigarray.Array1.get onbr i);
            Bigarray.Array1.set eid !cur (Bigarray.Array1.get oeid i);
            incr cur
          done
        done;
        t.packed <- P_i32 { off = noff; nbr; eid });
    t.buf_len <- 0;
    note_bytes t
  end

let grow_buffer t =
  let cap = Array.length t.buf_nbr in
  if t.buf_len = cap then begin
    let cap' = max 16 (2 * cap) in
    let widen a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.buf_nbr <- widen t.buf_nbr;
    t.buf_eid <- widen t.buf_eid;
    t.buf_next <- widen t.buf_next
  end

let add t u v id =
  if t.half >= t.limit then
    invalid_arg
      (Printf.sprintf
         "Csr.add: %d half-edges would exceed the %s backend's index range"
         (t.half + 1)
         (backend_name (backend t)));
  grow_buffer t;
  let j = t.buf_len in
  t.buf_nbr.(j) <- v;
  t.buf_eid.(j) <- id;
  t.buf_next.(j) <- t.buf_head.(u);
  t.buf_head.(u) <- j;
  t.buf_len <- j + 1;
  t.deg.(u) <- t.deg.(u) + 1;
  t.half <- t.half + 1;
  (* Compact once the buffer outgrows a quarter of the packed region
     (floor [compaction_floor] half-edges): traversals between
     compactions chase at most that many chain links per pass, and the
     rebuild schedule stays geometric. *)
  if t.buf_len >= max compaction_floor ((t.half - t.buf_len) / 4) then compact t

(* One scan closure per traversal: the backend dispatch and the array
   captures happen once, so the per-edge inner loop is monomorphic for
   either backend.  This is the shared idiom of every hot consumer
   (Bfs / Dijkstra / Hop_dp). *)
let scanner t =
  let bhead = t.buf_head and bnbr = t.buf_nbr in
  let beid = t.buf_eid and bnext = t.buf_next in
  match t.packed with
  | P_int { off; nbr; eid } ->
      fun u fn ->
        let j = ref bhead.(u) in
        while !j >= 0 do
          fn bnbr.(!j) beid.(!j);
          j := bnext.(!j)
        done;
        for i = off.(u) to off.(u + 1) - 1 do
          fn nbr.(i) eid.(i)
        done
  | P_i32 { off; nbr; eid } ->
      fun u fn ->
        let j = ref bhead.(u) in
        while !j >= 0 do
          fn bnbr.(!j) beid.(!j);
          j := bnext.(!j)
        done;
        let stop = Int32.to_int (Bigarray.Array1.get off (u + 1)) in
        let i = ref (Int32.to_int (Bigarray.Array1.get off u)) in
        while !i < stop do
          fn
            (Int32.to_int (Bigarray.Array1.get nbr !i))
            (Int32.to_int (Bigarray.Array1.get eid !i));
          incr i
        done

let iter t u fn =
  let j = ref t.buf_head.(u) in
  while !j >= 0 do
    fn t.buf_nbr.(!j) t.buf_eid.(!j);
    j := t.buf_next.(!j)
  done;
  match t.packed with
  | P_int { off; nbr; eid } ->
      for i = off.(u) to off.(u + 1) - 1 do
        fn nbr.(i) eid.(i)
      done
  | P_i32 { off; nbr; eid } ->
      let stop = Int32.to_int (Bigarray.Array1.get off (u + 1)) in
      let i = ref (Int32.to_int (Bigarray.Array1.get off u)) in
      while !i < stop do
        fn
          (Int32.to_int (Bigarray.Array1.get nbr !i))
          (Int32.to_int (Bigarray.Array1.get eid !i));
        incr i
      done

let find t u v =
  let rec chain j =
    if j < 0 then None
    else if t.buf_nbr.(j) = v then Some t.buf_eid.(j)
    else chain t.buf_next.(j)
  in
  match chain t.buf_head.(u) with
  | Some _ as found -> found
  | None -> (
      match t.packed with
      | P_int { off; nbr; eid } ->
          let rec packed i =
            if i >= off.(u + 1) then None
            else if nbr.(i) = v then Some eid.(i)
            else packed (i + 1)
          in
          packed off.(u)
      | P_i32 { off; nbr; eid } ->
          let stop = Int32.to_int (Bigarray.Array1.get off (u + 1)) in
          let rec packed i =
            if i >= stop then None
            else if Int32.to_int (Bigarray.Array1.get nbr i) = v then
              Some (Int32.to_int (Bigarray.Array1.get eid i))
            else packed (i + 1)
          in
          packed (Int32.to_int (Bigarray.Array1.get off u)))

let i32_copy a =
  let b = i32_create (Bigarray.Array1.dim a) in
  Bigarray.Array1.blit a b;
  b

let copy t =
  let packed =
    match t.packed with
    | P_int { off; nbr; eid } ->
        P_int { off = Array.copy off; nbr = Array.copy nbr; eid = Array.copy eid }
    | P_i32 { off; nbr; eid } ->
        P_i32 { off = i32_copy off; nbr = i32_copy nbr; eid = i32_copy eid }
  in
  {
    n = t.n;
    limit = t.limit;
    packed;
    buf_head = Array.copy t.buf_head;
    buf_nbr = Array.copy t.buf_nbr;
    buf_eid = Array.copy t.buf_eid;
    buf_next = Array.copy t.buf_next;
    buf_len = t.buf_len;
    deg = Array.copy t.deg;
    half = t.half;
  }

(* Validation shared by the bulk constructors: offsets must describe a
   well-formed CSR over [n] vertices and every neighbor must be a valid
   vertex.  Edge-id semantics (two half-edges per id, ids dense in
   [0, m)) belong to Graph.of_adjacency. *)
let check_packed ~what ~n ~half ~len_nbr ~len_eid ~get_off ~get_nbr =
  if n < 0 then invalid_arg (what ^ ": negative vertex count");
  if len_nbr <> len_eid then invalid_arg (what ^ ": nbr/eid length mismatch");
  if half <> len_nbr then invalid_arg (what ^ ": off does not cover nbr");
  if get_off 0 <> 0 then invalid_arg (what ^ ": off must start at 0");
  for u = 0 to n - 1 do
    if get_off (u + 1) < get_off u then
      invalid_arg (what ^ ": off not monotone")
  done;
  for i = 0 to len_nbr - 1 do
    let v = get_nbr i in
    if v < 0 || v >= n then invalid_arg (what ^ ": neighbor out of range")
  done

let finish_packed ~n ~half ~limit ~get_off packed =
  let deg = Array.make n 0 in
  for u = 0 to n - 1 do
    deg.(u) <- get_off (u + 1) - get_off u
  done;
  let t =
    {
      n;
      limit;
      packed;
      buf_head = Array.make n (-1);
      buf_nbr = [||];
      buf_eid = [||];
      buf_next = [||];
      buf_len = 0;
      deg;
      half;
    }
  in
  note_bytes t;
  t

let of_packed_int ~off ~nbr ~eid =
  let n = Array.length off - 1 in
  let half = if n >= 0 then off.(n) else 0 in
  check_packed ~what:"Csr.of_packed_int" ~n ~half ~len_nbr:(Array.length nbr)
    ~len_eid:(Array.length eid)
    ~get_off:(fun u -> off.(u))
    ~get_nbr:(fun i -> nbr.(i));
  finish_packed ~n ~half ~limit:(max_half Int_array)
    ~get_off:(fun u -> off.(u))
    (P_int { off; nbr; eid })

let of_packed_i32 ~off ~nbr ~eid =
  let dim = Bigarray.Array1.dim in
  let n = dim off - 1 in
  let get_off u = Int32.to_int (Bigarray.Array1.get off u) in
  let half = if n >= 0 then get_off n else 0 in
  check_packed ~what:"Csr.of_packed_i32" ~n ~half ~len_nbr:(dim nbr)
    ~len_eid:(dim eid) ~get_off
    ~get_nbr:(fun i -> Int32.to_int (Bigarray.Array1.get nbr i));
  finish_packed ~n ~half ~limit:(max_half Int32_bigarray) ~get_off
    (P_i32 { off; nbr; eid })

let convert b t =
  let c = copy t in
  compact c;
  if backend c = b then c
  else begin
    if b = Int32_bigarray && (c.half > max_half b || c.n >= max_half b) then
      invalid_arg "Csr.convert: graph exceeds the int32 backend's index range";
    let packed =
      match c.packed with
      | P_int { off; nbr; eid } ->
          let pack src len =
            let a = i32_create len in
            for i = 0 to len - 1 do
              Bigarray.Array1.set a i (Int32.of_int src.(i))
            done;
            a
          in
          P_i32
            {
              off = pack off (c.n + 1);
              nbr = pack nbr c.half;
              eid = pack eid c.half;
            }
      | P_i32 { off; nbr; eid } ->
          let unpack src len =
            Array.init len (fun i ->
                Int32.to_int (Bigarray.Array1.get src i))
          in
          P_int
            {
              off = unpack off (c.n + 1);
              nbr = unpack nbr c.half;
              eid = unpack eid c.half;
            }
    in
    let t' = { c with limit = max_half b; packed } in
    note_bytes t';
    t'
  end
