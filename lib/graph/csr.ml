type t = {
  n : int;
  mutable off : int array;
  mutable nbr : int array;
  mutable eid : int array;
  mutable buf_head : int array;
  mutable buf_nbr : int array;
  mutable buf_eid : int array;
  mutable buf_next : int array;
  mutable buf_len : int;
  mutable deg : int array;
  mutable half : int;
}

let create n =
  {
    n;
    off = Array.make (n + 1) 0;
    nbr = [||];
    eid = [||];
    buf_head = Array.make n (-1);
    buf_nbr = [||];
    buf_eid = [||];
    buf_next = [||];
    buf_len = 0;
    deg = Array.make n 0;
    half = 0;
  }

let degree t u = t.deg.(u)
let buffered t = t.buf_len

let compact t =
  if t.buf_len > 0 then begin
    let nbr = Array.make t.half 0 and eid = Array.make t.half 0 in
    let off = Array.make (t.n + 1) 0 in
    let acc = ref 0 in
    for u = 0 to t.n - 1 do
      off.(u) <- !acc;
      acc := !acc + t.deg.(u)
    done;
    off.(t.n) <- !acc;
    (* Per vertex: buffer chain first (it is newest-first), then the old
       packed slice (already newest-first) — decreasing edge ids
       throughout, so the ordering contract survives compaction. *)
    for u = 0 to t.n - 1 do
      let cur = ref off.(u) in
      let j = ref t.buf_head.(u) in
      while !j >= 0 do
        nbr.(!cur) <- t.buf_nbr.(!j);
        eid.(!cur) <- t.buf_eid.(!j);
        incr cur;
        j := t.buf_next.(!j)
      done;
      t.buf_head.(u) <- -1;
      for i = t.off.(u) to t.off.(u + 1) - 1 do
        nbr.(!cur) <- t.nbr.(i);
        eid.(!cur) <- t.eid.(i);
        incr cur
      done
    done;
    t.off <- off;
    t.nbr <- nbr;
    t.eid <- eid;
    t.buf_len <- 0
  end

let grow_buffer t =
  let cap = Array.length t.buf_nbr in
  if t.buf_len = cap then begin
    let cap' = max 16 (2 * cap) in
    let widen a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.buf_nbr <- widen t.buf_nbr;
    t.buf_eid <- widen t.buf_eid;
    t.buf_next <- widen t.buf_next
  end

let add t u v id =
  grow_buffer t;
  let j = t.buf_len in
  t.buf_nbr.(j) <- v;
  t.buf_eid.(j) <- id;
  t.buf_next.(j) <- t.buf_head.(u);
  t.buf_head.(u) <- j;
  t.buf_len <- j + 1;
  t.deg.(u) <- t.deg.(u) + 1;
  t.half <- t.half + 1;
  (* Compact once the buffer outgrows a quarter of the packed region
     (floor 64 half-edges): traversals between compactions chase at most
     that many chain links per pass, and the rebuild schedule stays
     geometric. *)
  if t.buf_len >= max 64 ((t.half - t.buf_len) / 4) then compact t

let iter t u fn =
  let j = ref t.buf_head.(u) in
  while !j >= 0 do
    fn t.buf_nbr.(!j) t.buf_eid.(!j);
    j := t.buf_next.(!j)
  done;
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    fn t.nbr.(i) t.eid.(i)
  done

let find t u v =
  let rec chain j =
    if j < 0 then None
    else if t.buf_nbr.(j) = v then Some t.buf_eid.(j)
    else chain t.buf_next.(j)
  in
  let rec packed i =
    if i >= t.off.(u + 1) then None
    else if t.nbr.(i) = v then Some t.eid.(i)
    else packed (i + 1)
  in
  match chain t.buf_head.(u) with
  | Some _ as found -> found
  | None -> packed t.off.(u)

let copy t =
  {
    n = t.n;
    off = Array.copy t.off;
    nbr = Array.copy t.nbr;
    eid = Array.copy t.eid;
    buf_head = Array.copy t.buf_head;
    buf_nbr = Array.copy t.buf_nbr;
    buf_eid = Array.copy t.buf_eid;
    buf_next = Array.copy t.buf_next;
    buf_len = t.buf_len;
    deg = Array.copy t.deg;
    half = t.half;
  }
