exception Not_a_graph of string
exception Corrupt of string

let magic = "ftspan.g"
let version = 1
let endian_tag = 0x01020304l
let header_bytes = 40

let align8 pos = (pos + 7) land lnot 7

(* Region offsets for a given (n, m); everything before the weights is a
   multiple of 4, so the int32 regions are naturally aligned and only
   the float64 region needs explicit padding. *)
let off_pos = header_bytes
let nbr_pos ~n = off_pos + (4 * (n + 1))
let eid_pos ~n ~m = nbr_pos ~n + (8 * m)
let weights_pos ~n ~m = align8 (eid_pos ~n ~m + (8 * m))

let expected_size ~n ~m ~weighted =
  if weighted then weights_pos ~n ~m + (8 * m) else eid_pos ~n ~m + (8 * m)

(* ------------------------------------------------------------------ *)
(* Writing *)

let save g file =
  let n = Graph.n g and m = Graph.m g in
  if 2 * m > Csr.max_half Csr.Int32_bigarray || n >= Csr.max_half Csr.Int32_bigarray
  then invalid_arg "Graph_binio.save: graph exceeds the int32 index range";
  let weighted = not (Graph.is_unit_weighted g) in
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b4 = Bytes.create 4 and b8 = Bytes.create 8 in
      let w32 v =
        Bytes.set_int32_le b4 0 (Int32.of_int v);
        output_bytes oc b4
      in
      let w64 v =
        Bytes.set_int64_le b8 0 (Int64.of_int v);
        output_bytes oc b8
      in
      output_string oc magic;
      w32 version;
      Bytes.set_int32_le b4 0 endian_tag;
      output_bytes oc b4;
      w64 n;
      w64 m;
      w32 (if weighted then 1 else 0);
      w32 0;
      (* off: cumulative degrees — matches the row-concatenated order
         the nbr/eid dump below uses. *)
      let adj = Graph.adjacency g in
      let acc = ref 0 in
      w32 0;
      for u = 0 to n - 1 do
        acc := !acc + Csr.degree adj u;
        w32 !acc
      done;
      for u = 0 to n - 1 do
        Csr.iter adj u (fun v _ -> w32 v)
      done;
      for u = 0 to n - 1 do
        Csr.iter adj u (fun _ id -> w32 id)
      done;
      if weighted then begin
        let pad = weights_pos ~n ~m - (eid_pos ~n ~m + (8 * m)) in
        for _ = 1 to pad do
          output_char oc '\000'
        done;
        Graph.iter_edges g (fun e ->
            Bytes.set_int64_le b8 0 (Int64.bits_of_float e.Graph.w);
            output_bytes oc b8)
      end)

(* ------------------------------------------------------------------ *)
(* Reading *)

let corrupt file fmt =
  Printf.ksprintf (fun msg -> raise (Corrupt (file ^ ": " ^ msg))) fmt

let not_a_graph file fmt =
  Printf.ksprintf (fun msg -> raise (Not_a_graph (file ^ ": " ^ msg))) fmt

(* Map [len] int32s at byte offset [pos].  [Unix.map_file] accepts any
   offset (it page-aligns internally), and the mapping is private: the
   first compaction after a mutating [add_edge] replaces the arrays
   wholesale, so the file is never written through.  Big-endian hosts
   cannot reinterpret the little-endian bytes in place and take the
   copy-and-swap fallback instead. *)
let map_i32 fd ~pos ~len : Csr.i32 =
  if len = 0 then Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout 0
  else
    let a =
      Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout
        false [| len |]
    in
    Bigarray.array1_of_genarray a

let read_i32_swapped ic ~pos ~len : Csr.i32 =
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
  seek_in ic pos;
  let chunk = Bytes.create (4 * 65536) in
  let i = ref 0 in
  while !i < len do
    let batch = min 65536 (len - !i) in
    really_input ic chunk 0 (4 * batch);
    for k = 0 to batch - 1 do
      Bigarray.Array1.set a (!i + k) (Bytes.get_int32_le chunk (4 * k))
    done;
    i := !i + batch
  done;
  a

let load ?(backend = Csr.Int32_bigarray) file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < String.length magic then not_a_graph file "file too short";
      let mg = really_input_string ic (String.length magic) in
      if mg <> magic then not_a_graph file "bad magic (not an ftspan.graph file)";
      if size < header_bytes then corrupt file "truncated header";
      let hdr = Bytes.create (header_bytes - 8) in
      really_input ic hdr 0 (header_bytes - 8);
      let ver = Int32.to_int (Bytes.get_int32_le hdr 0) in
      if ver <> version then corrupt file "unsupported format version %d" ver;
      if Bytes.get_int32_le hdr 4 <> endian_tag then
        corrupt file "bad endianness tag";
      let n64 = Bytes.get_int64_le hdr 8 and m64 = Bytes.get_int64_le hdr 16 in
      let kind = Int32.to_int (Bytes.get_int32_le hdr 24) in
      if kind <> 0 && kind <> 1 then corrupt file "unknown weights kind %d" kind;
      let limit = Int64.of_int (Csr.max_half Csr.Int32_bigarray) in
      if Int64.compare n64 0L < 0 || Int64.compare n64 limit >= 0 then
        corrupt file "vertex count out of range";
      if
        Int64.compare m64 0L < 0
        || Int64.compare (Int64.mul 2L m64) limit > 0
      then corrupt file "edge count %Ld exceeds the int32 index range" m64;
      let n = Int64.to_int n64 and m = Int64.to_int m64 in
      let weighted = kind = 1 in
      let want = expected_size ~n ~m ~weighted in
      if size < want then corrupt file "truncated (%d bytes, need %d)" size want;
      if size > want then corrupt file "trailing bytes (%d past %d)" size want;
      let fetch =
        if Sys.big_endian then fun ~pos ~len -> read_i32_swapped ic ~pos ~len
        else begin
          let fd = Unix.descr_of_in_channel ic in
          fun ~pos ~len -> map_i32 fd ~pos ~len
        end
      in
      let off = fetch ~pos:off_pos ~len:(n + 1) in
      let nbr = fetch ~pos:(nbr_pos ~n) ~len:(2 * m) in
      let eid = fetch ~pos:(eid_pos ~n ~m) ~len:(2 * m) in
      let weights =
        if not weighted then None
        else begin
          seek_in ic (weights_pos ~n ~m);
          let w = Array.make m 0. in
          let chunk = Bytes.create (8 * 65536) in
          let i = ref 0 in
          while !i < m do
            let batch = min 65536 (m - !i) in
            really_input ic chunk 0 (8 * batch);
            for k = 0 to batch - 1 do
              w.(!i + k) <- Int64.float_of_bits (Bytes.get_int64_le chunk (8 * k))
            done;
            i := !i + batch
          done;
          Some w
        end
      in
      let adj =
        try Csr.of_packed_i32 ~off ~nbr ~eid
        with Invalid_argument msg -> corrupt file "invalid adjacency: %s" msg
      in
      let adj =
        if backend = Csr.Int_array then Csr.convert Csr.Int_array adj else adj
      in
      try Graph.of_adjacency ?weights adj
      with Invalid_argument msg -> corrupt file "invalid graph: %s" msg)
