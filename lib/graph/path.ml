type t = { vertices : int list; edges : int list }

let hops p = List.length p.edges

let source p =
  match p.vertices with
  | v :: _ -> v
  | [] -> invalid_arg "Path.source: empty path"

let target p =
  match List.rev p.vertices with
  | v :: _ -> v
  | [] -> invalid_arg "Path.target: empty path"

let interior p =
  match p.vertices with
  | [] | [ _ ] -> []
  | _ :: rest -> (
      match List.rev rest with
      | [] -> []
      | _ :: middle_rev -> List.rev middle_rev)

let weight g p = List.fold_left (fun acc id -> acc +. Graph.weight g id) 0. p.edges

let is_valid g p =
  match p.vertices with
  | [] -> false
  | first :: rest ->
      let rec walk prev vs es =
        match (vs, es) with
        | [], [] -> true
        | v :: vs', id :: es' ->
            id >= 0 && id < Graph.m g
            &&
            let a, b = Graph.endpoints g id in
            ((a = prev && b = v) || (a = v && b = prev)) && walk v vs' es'
        | _, _ -> false
      in
      walk first rest p.edges

let pp ppf p =
  Format.fprintf ppf "@[<h>path[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "-")
       Format.pp_print_int)
    p.vertices
