(** Descriptive statistics over graphs, used by the experiment harness. *)

type t = {
  n : int;
  m : int;
  min_degree : int;
  max_degree : int;
  avg_degree : float;
  density : float;  (** m / C(n,2), 0 for n < 2 *)
  total_weight : float;
  components : int;
}

val compute : Graph.t -> t

(** [degree_histogram g] maps degree [d] to the number of vertices with that
    degree; indices up to [max_degree g]. *)
val degree_histogram : Graph.t -> int array

(** [diameter g] is the largest finite hop eccentricity, [None] when [g] is
    edgeless or disconnected pairs dominate (we report the max over the
    largest component). *)
val diameter : Graph.t -> int

val pp : Format.formatter -> t -> unit
