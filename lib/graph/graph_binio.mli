(** Versioned binary graph serialization — the [ftspan.graph.v1]
    on-disk format.

    Text graphs ({!Graph_io}) parse at a few million edges per second;
    at the 10⁶–10⁷-edge tier the parse dominates every experiment.
    This format stores the compacted CSR itself, so {!load} maps the
    packed regions straight into the {!Csr.Int32_bigarray} backend with
    [Unix.map_file] — near-zero-copy: the only per-edge work is the
    validation scan and the edge-store rebuild.

    {b Layout} (all integers little-endian; written byte-swapped on
    big-endian hosts, read through a copy-and-swap fallback there):

    {v
    offset  size        field
    0       8           magic "ftspan.g"
    8       4           format version (1)
    12      4           endianness tag 0x01020304
    16      8           n  (vertex count)
    24      8           m  (edge count)
    32      4           weights kind: 0 = unit, 1 = float64 array
    36      4           reserved (0)
    40      4(n+1)      off   — CSR row offsets, int32
    ...     8m          nbr   — neighbor vertices, int32
    ...     8m          eid   — edge ids, int32
    ...     0..7        zero padding to an 8-byte boundary
    ...     8m          weights, IEEE float64 (kind 1 only)
    v}

    The [off]/[nbr]/[eid] arrays are the row-concatenated adjacency in
    iteration order (newest-first per vertex — {!Csr}'s ordering
    contract), so a loaded graph reproduces the writer's traversals,
    selections and counters bit-for-bit.

    {b Error classes}: {!Not_a_graph} means the file is not this format
    at all (too short for the magic, or wrong magic) — the CLI maps it
    to exit 2, like any other usage error.  {!Corrupt} means the magic
    matched but the contents are unusable: unsupported version, bad
    endianness tag, truncated or oversized payload, [m] beyond the
    int32 index range, or adjacency contents that fail validation —
    exit 1. *)

exception Not_a_graph of string
exception Corrupt of string

(** The 8-byte magic, ["ftspan.g"]. *)
val magic : string

(** The format version written by {!save} (currently [1]). *)
val version : int

(** [save g file] writes [g] in [ftspan.graph.v1] layout.  Works from
    either storage backend; the weights array is omitted when [g] is
    unit-weighted.  Raises [Invalid_argument] if [g] has more edges
    than the int32 layout can index. *)
val save : Graph.t -> string -> unit

(** [load ?backend file] reads a graph written by {!save}.  [backend]
    defaults to {!Csr.Int32_bigarray}, the near-zero-copy path (the
    mapped file regions become the packed adjacency; the mapping is
    private, so later mutation of the graph never touches the file).
    Raises {!Not_a_graph} / {!Corrupt} as described above, or
    [Sys_error]/[Unix.Unix_error] on I/O failure. *)
val load : ?backend:Csr.backend -> string -> Graph.t
